// Package bncg is the public API of this reproduction of Alon, Demaine,
// Hajiaghayi and Leighton, "Basic Network Creation Games" (SPAA 2010).
//
// The package re-exports the library's core surface:
//
//   - graphs and metrics (NewGraph, FromEdges, Edge, Matrix, Metric),
//   - the basic game's equilibrium checkers (CheckSum, CheckMax,
//     CheckSwapStable) and structural predicates (IsInsertionStable,
//     IsDeletionCritical, IsKInsertionStable),
//   - swap pricing and best responses (BestSwap, EvaluateMove, PriceSwaps),
//   - swap dynamics (RunDynamics with the dynamics.Options policies),
//   - the paper's constructions (Star, DoubleStar, Fig3,
//     DiameterThreeSumEquilibrium, NewTorus, NewMultiTorus, …),
//   - labeled-tree machinery (RandomTree, AllTrees), and
//   - the experiment harness regenerating every figure and theorem table
//     (Experiments, RunExperiments).
//
// See README.md for a quickstart and DESIGN.md for the system inventory.
package bncg

import (
	"io"
	"math/rand"

	"repro/internal/constructions"
	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/experiments"
	"repro/internal/game"
	"repro/internal/games"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/iso"
	"repro/internal/treegen"
)

// Re-exported fundamental types.
type (
	// Graph is a mutable simple undirected graph on vertices 0..n-1.
	Graph = graph.Graph
	// Edge is a normalized undirected edge (U < V).
	Edge = graph.Edge
	// Matrix is a dense all-pairs distance matrix.
	Matrix = graph.Matrix
	// Metric is a distance oracle (implemented by Matrix, Torus, MultiTorus).
	Metric = graph.Metric
	// Move is an edge swap: agent V replaces edge V–Drop by V–Add.
	Move = core.Move
	// Violation witnesses a failed equilibrium or stability predicate.
	Violation = core.Violation
	// Objective selects the usage cost (Sum or Max).
	Objective = core.Objective
	// Torus is the Theorem 12 diagonal torus with a closed-form metric.
	Torus = constructions.Torus
	// MultiTorus is the d-dimensional Section 4 generalization.
	MultiTorus = constructions.MultiTorus
	// CheckSpec selects one equilibrium check (model, objective, batched
	// routing, workers) — the unified request shape behind Check, the
	// dynamics spec, and the serving layer.
	CheckSpec = core.CheckSpec
	// Verdict is the outcome of a Check: stability bit, witness, and
	// whether the batched pass actually ran.
	Verdict = core.Verdict
	// DynamicsSpec configures RunDynamicsSpec; it embeds CheckSpec.
	DynamicsSpec = dynamics.Spec
	// DynamicsOptions is the deprecated flat configuration of RunDynamics.
	//
	// Deprecated: use DynamicsSpec.
	DynamicsOptions = dynamics.Options
	// DynamicsResult reports a dynamics run.
	DynamicsResult = dynamics.Result
	// BatchedState reports how a dynamics run honored a batched-sweeps
	// request (off, active, or explicit per-agent fallback).
	BatchedState = dynamics.BatchedState
	// ExperimentConfig scales the experiment harness.
	ExperimentConfig = experiments.Config
	// Experiment reproduces one paper artifact.
	Experiment = experiments.Experiment
)

// Objectives of the two game versions studied by the paper.
const (
	// Sum is the local-average-distance version: cost(v) = Σ_u d(v,u).
	Sum = core.Sum
	// Max is the local-diameter version: cost(v) = ecc(v).
	Max = core.Max
)

// Dynamics scheduling policies.
const (
	BestResponse     = dynamics.BestResponse
	FirstImprovement = dynamics.FirstImprovement
	RandomImproving  = dynamics.RandomImproving
)

// Batched-sweep states reported by DynamicsResult.Batched.
const (
	BatchedOff      = dynamics.BatchedOff
	BatchedActive   = dynamics.BatchedActive
	BatchedFallback = dynamics.BatchedFallback
)

// The deviation-model layer (internal/game): a GameModel owns move
// enumeration and incremental pricing for one deviation rule, and plugs
// into RunDynamics via DynamicsOptions.Model.
type (
	// GameModel is one deviation rule (swap, greedy add/delete/swap,
	// communication interests, ...).
	GameModel = game.Model
	// GameInstance is a model bound to a live position.
	GameInstance = game.Instance
)

var (
	// SwapModel is the paper's basic game (the default model).
	SwapModel = game.Swap{}
	// GreedyModel builds the greedy add/delete/swap model with the given
	// per-incident-edge maintenance price.
	GreedyModel = func(edgeCost int64) GameModel { return game.Greedy{EdgeCost: edgeCost} }
	// InterestsModel builds the communication-interests model from
	// per-vertex interest sets.
	InterestsModel = func(sets [][]int32) GameModel { return game.NewInterests(sets) }
	// RandomInterestsModel draws each ordered interest pair with
	// probability p.
	RandomInterestsModel = game.RandomInterests
	// UniformInterestsModel is the full-interest degenerate case that
	// coincides with the basic swap game.
	UniformInterestsModel = game.UniformInterests
	// BudgetModel builds the bounded-budget model: every vertex maintains
	// at most k edges, so re-points must target a vertex with spare budget
	// (Ehsani et al.). With k ≥ n−1 it coincides with the basic swap game.
	BudgetModel = func(k int) GameModel { return game.Budget{K: k} }
	// TwoNeighborhoodModel is the 2-neighborhood maximization model
	// (de la Haye et al.): swaps that grow |N₂(v)|, priced from adjacency
	// alone; the Sum/Max objective is ignored.
	TwoNeighborhoodModel = game.TwoNeighborhood{}
)

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// FromEdges builds a graph on n vertices from an edge list.
func FromEdges(n int, edges []Edge) (*Graph, error) { return graph.FromEdges(n, edges) }

// Check runs the equilibrium check selected by spec on g — the one entry
// point the historical CheckSum / CheckMax / CheckSwapStable × *Batched
// names collapsed into. Verdicts and witnesses are bit-identical to the
// deprecated wrappers for the corresponding specs.
func Check(g *Graph, spec CheckSpec) (Verdict, error) {
	return core.Check(g, spec)
}

// CheckSum reports whether g is in sum equilibrium (no swap strictly
// decreases any agent's total distance), with a witness on failure.
//
// Deprecated: use Check with CheckSpec{Objective: Sum}.
func CheckSum(g *Graph, workers int) (bool, *Violation, error) {
	return core.CheckSum(g, workers)
}

// CheckMax reports whether g is in max equilibrium (no swap decreases any
// agent's local diameter, and every deletion strictly increases it).
//
// Deprecated: use Check with CheckSpec{Objective: Max}.
func CheckMax(g *Graph, workers int) (bool, *Violation, error) {
	return core.CheckMax(g, workers)
}

// CheckSwapStable checks only the no-improving-swap condition (the
// equilibrium notion swap dynamics converge to).
//
// Deprecated: use Check with CheckSpec{Objective: obj, StableOnly: true}.
func CheckSwapStable(g *Graph, obj Objective, workers int) (bool, *Violation, error) {
	return core.CheckSwapStable(g, obj, workers)
}

// CheckSumBatched is CheckSum via the batched cross-agent sweep: candidate
// endpoint BFS rows are computed once and reused across agents as sound
// lower-bound filters (O(n²) transient memory, far fewer BFS). Verdict and
// witness are bit-identical to CheckSum.
//
// Deprecated: use Check with CheckSpec{Objective: Sum, Batched: true}.
func CheckSumBatched(g *Graph, workers int) (bool, *Violation, error) {
	return core.CheckSumBatched(g, workers)
}

// CheckMaxBatched is CheckMax via the batched cross-agent sweep; verdict
// and witness are bit-identical to CheckMax.
//
// Deprecated: use Check with CheckSpec{Objective: Max, Batched: true}.
func CheckMaxBatched(g *Graph, workers int) (bool, *Violation, error) {
	return core.CheckMaxBatched(g, workers)
}

// CheckSwapStableBatched is CheckSwapStable via the batched cross-agent
// sweep; verdict and witness are bit-identical.
//
// Deprecated: use Check with CheckSpec{Objective: obj, StableOnly: true,
// Batched: true}.
func CheckSwapStableBatched(g *Graph, obj Objective, workers int) (bool, *Violation, error) {
	return core.CheckSwapStableBatched(g, obj, workers)
}

// IsInsertionStable reports whether no single edge insertion decreases an
// endpoint's local diameter.
func IsInsertionStable(g *Graph, workers int) (bool, *Violation, error) {
	return core.IsInsertionStable(g, workers)
}

// IsDeletionCritical reports whether every edge deletion strictly increases
// both endpoints' local diameters.
func IsDeletionCritical(g *Graph, workers int) (bool, *Violation, error) {
	return core.IsDeletionCritical(g, workers)
}

// IsKInsertionStable reports whether no agent can decrease its local
// diameter by inserting up to k incident edges simultaneously.
func IsKInsertionStable(g *Graph, k, workers int) (bool, *core.KInsertionResult, error) {
	return core.IsKInsertionStable(g, k, workers)
}

// BestSwap returns agent v's cost-minimizing swap and whether it strictly
// improves.
func BestSwap(g *Graph, v int, obj Objective) (Move, int64, bool) {
	return core.BestSwap(g, v, obj)
}

// BestSwapParallel is BestSwap with the candidate scan sharded across the
// given number of workers (<= 0 means all cores); the result is identical
// for every worker count.
func BestSwapParallel(g *Graph, v int, obj Objective, workers int) (Move, int64, bool) {
	return core.BestSwapParallel(g, v, obj, workers)
}

// EvaluateMove prices one move by apply–measure–revert.
func EvaluateMove(g *Graph, m Move, obj Objective) int64 {
	return core.EvaluateMove(g, m, obj)
}

// Cost returns agent v's usage cost under obj (InfCost when disconnected).
func Cost(g *Graph, v int, obj Objective) int64 { return core.Cost(g, v, obj) }

// SocialCost returns the total usage cost over all agents.
func SocialCost(g *Graph, obj Objective) int64 { return core.SocialCost(g, obj) }

// RunDynamics runs swap dynamics on g (mutating it) until a certified swap
// equilibrium or the move budget is reached, configured by the deprecated
// flat options.
//
// Deprecated: use RunDynamicsSpec.
func RunDynamics(g *Graph, opt DynamicsOptions) (*DynamicsResult, error) {
	return dynamics.Run(g, opt)
}

// RunDynamicsSpec runs move dynamics on g (mutating it) until a certified
// equilibrium of the spec's model or the move budget is reached.
func RunDynamicsSpec(g *Graph, spec DynamicsSpec) (*DynamicsResult, error) {
	return dynamics.RunSpec(g, spec)
}

// Constructions from the paper.
var (
	// Path, Cycle, Star, Complete are the elementary families.
	Path     = constructions.Path
	Cycle    = constructions.Cycle
	Star     = constructions.Star
	Complete = constructions.Complete
	// Hypercube and Grid are standard structured families.
	Hypercube = constructions.Hypercube
	GridGraph = constructions.Grid
	// DoubleStar is the Figure 2 max-equilibrium tree.
	DoubleStar = constructions.DoubleStar
	// Fig3 is the literal Figure 3 graph (see its doc for the discovered
	// equilibrium gap).
	Fig3 = constructions.Fig3
	// Fig3Labels names Fig3's vertices as in the paper.
	Fig3Labels = constructions.Fig3Labels
	// DiameterThreeSumEquilibrium is the repaired Theorem 5 witness.
	DiameterThreeSumEquilibrium = constructions.DiameterThreeSumEquilibrium
	// NewTorus and NewMultiTorus are the Section 4 lower-bound families.
	NewTorus      = constructions.NewTorus
	NewMultiTorus = constructions.NewMultiTorus
)

// RandomTree returns a uniformly random labeled tree on n vertices.
func RandomTree(n int, rng *rand.Rand) *Graph { return treegen.RandomTree(n, rng) }

// AllTrees enumerates every labeled tree on n ≤ 10 vertices.
func AllTrees(n int, fn func(*Graph) bool) uint64 { return treegen.AllTrees(n, fn) }

// Graph serialization.
var (
	WriteEdgeList  = graphio.WriteEdgeList
	ReadEdgeList   = graphio.ReadEdgeList
	ToGraph6       = graphio.ToGraph6
	FromGraph6     = graphio.FromGraph6
	ToSparse6      = graphio.ToSparse6
	FromSparse6    = graphio.FromSparse6
	ToDOT          = graphio.ToDOT
	WriteInterests = graphio.WriteInterests
	ReadInterests  = graphio.ReadInterests
)

// Executable proofs: the improving moves constructed in the paper's
// arguments (see core.Theorem1Witness and core.Lemma2Witness).
var (
	Theorem1Witness = core.Theorem1Witness
	Lemma2Witness   = core.Lemma2Witness
)

// The α-parametrized comparison game (Fabrikant et al. [9]).
var (
	// AlphaSocialCost is α·m + Σ_v Σ_u d(v,u).
	AlphaSocialCost = games.SocialCost
	// PriceOfAnarchyProxy is SocialCost / min(star, clique).
	PriceOfAnarchyProxy = games.PriceOfAnarchyProxy
	// StableAlphaInterval is the α range on which a swap equilibrium is a
	// greedy equilibrium of the α-game.
	StableAlphaInterval = games.StableAlphaInterval
	// MinOwnership assigns each edge to its smaller endpoint.
	MinOwnership = games.MinOwnership
)

// Isomorphism utilities.
var (
	// IsoCertificate is an isomorphism-invariant string (exact for n ≤ 8).
	IsoCertificate = iso.Certificate
	// Isomorphic decides graph isomorphism exactly.
	Isomorphic = iso.Isomorphic
)

// Experiments returns the registered paper experiments (E1–E19).
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID looks up one experiment (e.g. "E5").
func ExperimentByID(id string) (Experiment, bool) { return experiments.ByID(id) }

// RunExperiments executes every experiment, rendering tables to w.
func RunExperiments(w io.Writer, cfg ExperimentConfig) error {
	return experiments.RunAll(w, cfg)
}

// RunExperiment executes a single experiment, rendering its tables to w.
func RunExperiment(w io.Writer, e Experiment, cfg ExperimentConfig) error {
	return experiments.RunOne(w, e, cfg)
}
