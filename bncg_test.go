package bncg

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// The facade tests exercise the public API end to end, mirroring what a
// downstream user would write.

func TestFacadeQuickstartFlow(t *testing.T) {
	// Build a graph, run dynamics, certify the result.
	rng := rand.New(rand.NewSource(2))
	g := RandomTree(12, rng)
	res, err := RunDynamics(g, DynamicsOptions{Objective: Sum, Policy: BestResponse})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("dynamics did not converge")
	}
	ok, viol, err := CheckSum(g, 0)
	if err != nil || !ok {
		t.Fatalf("result not an equilibrium: %v %v", viol, err)
	}
	if d, _ := g.Diameter(); d > 2 {
		t.Errorf("equilibrium tree diameter %d > 2", d)
	}
}

func TestFacadeConstructionsAndPredicates(t *testing.T) {
	tor := NewTorus(3)
	g := tor.Graph()
	if ok, _, _ := CheckMax(g, 0); !ok {
		t.Error("torus not a max equilibrium via facade")
	}
	if ok, _, _ := IsInsertionStable(g, 0); !ok {
		t.Error("torus not insertion-stable via facade")
	}
	if ok, _, _ := IsDeletionCritical(g, 0); !ok {
		t.Error("torus not deletion-critical via facade")
	}
	if ok, _, _ := IsKInsertionStable(NewMultiTorus(3, 2).Graph(), 2, 0); !ok {
		t.Error("3-d torus not 2-insertion-stable via facade")
	}
}

func TestFacadeCostsAndSwaps(t *testing.T) {
	g := Cycle(6)
	if c := Cost(g, 0, Sum); c != 9 {
		t.Errorf("Cost = %d, want 9", c)
	}
	if sc := SocialCost(g, Sum); sc != 54 {
		t.Errorf("SocialCost = %d, want 54", sc)
	}
	m, newCost, improves := BestSwap(g, 0, Sum)
	if !improves {
		t.Fatal("no improving swap on C6")
	}
	if got := EvaluateMove(g, m, Sum); got != newCost {
		t.Errorf("EvaluateMove = %d, want %d", got, newCost)
	}
}

func TestFacadeIO(t *testing.T) {
	g := Fig3()
	s, err := ToGraph6(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromGraph6(s)
	if err != nil || !back.Equal(g) {
		t.Error("graph6 round trip failed via facade")
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back2, err := ReadEdgeList(&buf)
	if err != nil || !back2.Equal(g) {
		t.Error("edge list round trip failed via facade")
	}
	dot := ToDOT(g, "fig3", Fig3Labels())
	if !strings.Contains(dot, "b1") {
		t.Error("DOT output missing labels")
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	if len(Experiments()) != 20 {
		t.Fatalf("Experiments() = %d entries, want 20", len(Experiments()))
	}
	e, ok := ExperimentByID("E3")
	if !ok {
		t.Fatal("E3 missing")
	}
	var buf bytes.Buffer
	if err := RunExperiment(&buf, e, ExperimentConfig{Quick: true, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Theorem 5") {
		t.Error("experiment output missing artifact title")
	}
}

func TestFacadeFromEdges(t *testing.T) {
	g, err := FromEdges(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil || g.M() != 2 {
		t.Fatalf("FromEdges: %v", err)
	}
	if _, err := FromEdges(2, []Edge{{U: 0, V: 0}}); err == nil {
		t.Error("self-loop accepted")
	}
}

func TestFacadeAllTrees(t *testing.T) {
	count := AllTrees(5, func(g *Graph) bool { return true })
	if count != 125 {
		t.Errorf("AllTrees(5) = %d, want 125", count)
	}
}

func TestFacadeProofWitnesses(t *testing.T) {
	g := Path(6)
	m, err := Theorem1Witness(g)
	if err != nil {
		t.Fatal(err)
	}
	if EvaluateMove(g, m, Sum) >= Cost(g, m.V, Sum) {
		t.Error("Theorem1Witness move does not improve")
	}
	m2, err := Lemma2Witness(g)
	if err != nil {
		t.Fatal(err)
	}
	if EvaluateMove(g, m2, Max) >= Cost(g, m2.V, Max) {
		t.Error("Lemma2Witness move does not improve")
	}
}

func TestFacadeSparse6(t *testing.T) {
	g := NewTorus(3).Graph()
	s, err := ToSparse6(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromSparse6(s)
	if err != nil || !back.Equal(g) {
		t.Error("sparse6 round trip failed via facade")
	}
}

func TestFacadeGamesAndIso(t *testing.T) {
	star := Star(9)
	if got := PriceOfAnarchyProxy(star, 5); got != 1 {
		t.Errorf("star PoA proxy = %v, want 1", got)
	}
	lo, hi, ok, err := StableAlphaInterval(star, MinOwnership(star), Sum, 0)
	if err != nil || !ok || lo != 1 || hi <= lo {
		t.Errorf("star alpha interval = [%d,%d] ok=%v err=%v", lo, hi, ok, err)
	}
	if !Isomorphic(Star(6), Star(6)) {
		t.Error("identical stars not isomorphic")
	}
	if IsoCertificate(Path(5)) == IsoCertificate(Star(5)) {
		t.Error("P5 and star certificates collide")
	}
}
