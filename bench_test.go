package bncg

// Benchmark harness: one benchmark per paper artifact (E1–E10 regenerate
// the corresponding experiment table in quick mode), plus substrate
// micro-benchmarks and the ablations called out in DESIGN.md (patch-based
// swap pricing vs naive re-evaluation, sequential vs parallel APSP and
// checking, best-response vs random-improving dynamics).

import (
	"io"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/experiments"
	"repro/internal/game"
	"repro/internal/games"
	"repro/internal/graph"
	"repro/internal/iso"
	"repro/internal/nash"
	"repro/internal/pricing"
	"repro/internal/treegen"
)

func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	cfg := experiments.Config{Quick: true, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := experiments.RunOne(io.Discard, e, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per reproduced table/figure.

func BenchmarkE1SumTrees(b *testing.B)      { benchExperiment(b, "E1") }
func BenchmarkE2MaxTrees(b *testing.B)      { benchExperiment(b, "E2") }
func BenchmarkE3Fig3(b *testing.B)          { benchExperiment(b, "E3") }
func BenchmarkE4SumDiameter(b *testing.B)   { benchExperiment(b, "E4") }
func BenchmarkE5Torus(b *testing.B)         { benchExperiment(b, "E5") }
func BenchmarkE6MultiDim(b *testing.B)      { benchExperiment(b, "E6") }
func BenchmarkE7Balance(b *testing.B)       { benchExperiment(b, "E7") }
func BenchmarkE8Uniformity(b *testing.B)    { benchExperiment(b, "E8") }
func BenchmarkE9Cayley(b *testing.B)        { benchExperiment(b, "E9") }
func BenchmarkE10Alpha(b *testing.B)        { benchExperiment(b, "E10") }
func BenchmarkE11Lemma10(b *testing.B)      { benchExperiment(b, "E11") }
func BenchmarkE12AlphaGame(b *testing.B)    { benchExperiment(b, "E12") }
func BenchmarkE13PairUniform(b *testing.B)  { benchExperiment(b, "E13") }
func BenchmarkE14IsoClasses(b *testing.B)   { benchExperiment(b, "E14") }
func BenchmarkE15Proofs(b *testing.B)       { benchExperiment(b, "E15") }
func BenchmarkE16Conjecture14(b *testing.B) { benchExperiment(b, "E16") }
func BenchmarkE17ModelZoo(b *testing.B)     { benchExperiment(b, "E17") }
func BenchmarkE18BudgetSweep(b *testing.B)  { benchExperiment(b, "E18") }
func BenchmarkE19CrossModel(b *testing.B)   { benchExperiment(b, "E19") }
func BenchmarkE20Atlas(b *testing.B)        { benchExperiment(b, "E20") }

// Substrate micro-benchmarks.

func benchGraph(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := treegen.RandomTree(n, rng)
	for i := 0; i < n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

func BenchmarkBFS(b *testing.B) {
	g := benchGraph(2000, 1)
	dist := make([]int32, g.N())
	queue := make([]int, 0, g.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFSInto(i%g.N(), dist, queue)
	}
}

func BenchmarkBFSFrozen(b *testing.B) {
	g := benchGraph(2000, 1)
	f := g.Freeze()
	dist := make([]int32, f.N())
	queue := make([]int32, 0, f.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.BFSInto(i%f.N(), dist, queue)
	}
}

func BenchmarkAPSPSequential(b *testing.B) {
	g := benchGraph(400, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.AllPairs()
	}
}

func BenchmarkAPSPParallel(b *testing.B) {
	g := benchGraph(400, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.AllPairsParallel(0)
	}
}

func BenchmarkCheckSumStar(b *testing.B) {
	g := Star(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _, err := core.CheckSum(g, 0); !ok || err != nil {
			b.Fatal("star rejected")
		}
	}
}

// BenchmarkCheckSumStarBatched is CheckSumStar through the batched
// cross-agent sweep: the n shared endpoint rows filter every leaf's
// candidate scan down to zero exact verifications on a stable star, so the
// pass costs Θ(n + m) BFS instead of Θ(n²). Same verdict and witness as
// CheckSum (pinned by TestCheckSwapBatchedMatchesCheckSwap).
func BenchmarkCheckSumStarBatched(b *testing.B) {
	g := Star(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _, err := core.CheckSumBatched(g, 0); !ok || err != nil {
			b.Fatal("star rejected")
		}
	}
}

func BenchmarkCheckMaxTorusSequential(b *testing.B) {
	g := NewTorus(4).Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _, err := core.CheckMax(g, 1); !ok || err != nil {
			b.Fatal("torus rejected")
		}
	}
}

func BenchmarkCheckMaxTorusParallel(b *testing.B) {
	g := NewTorus(4).Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _, err := core.CheckMax(g, 0); !ok || err != nil {
			b.Fatal("torus rejected")
		}
	}
}

func BenchmarkInsertionStableTorus(b *testing.B) {
	g := NewTorus(5).Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _, err := core.IsInsertionStable(g, 0); !ok || err != nil {
			b.Fatal("torus rejected")
		}
	}
}

func BenchmarkTorusOracleDist(b *testing.B) {
	tor := NewTorus(64) // n = 8192: far beyond explicit APSP
	n := tor.N()
	b.ResetTimer()
	sum := 0
	for i := 0; i < b.N; i++ {
		sum += tor.Dist(i%n, (i*7919)%n)
	}
	_ = sum
}

// Tentpole ablation: the swap-pricing engine (two patched BFS rows per
// candidate, internal/pricing) vs the naive per-candidate AllPairs path
// (apply the move, recompute all-pairs shortest paths, read the cost,
// revert) on a path graph with n = 256. The acceptance bar for the engine
// is a ≥ 5× speedup here; see README.md for recorded numbers.

func BenchmarkSwapPricingEnginePath256(b *testing.B) {
	g := Path(256)
	v := 128
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.PriceSwaps(g, v, core.Sum, func(core.Move, int64) bool { return true })
	}
}

func BenchmarkSwapPricingNaiveAllPairsPath256(b *testing.B) {
	g := Path(256)
	v := 128
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range g.Neighbors(v) {
			for wp := 0; wp < g.N(); wp++ {
				if wp == v {
					continue
				}
				g.RemoveEdge(v, w)
				added := g.AddEdge(v, wp)
				ap := g.AllPairs()
				var sum int64
				for _, d := range ap.Row(v) {
					sum += int64(d)
				}
				_ = sum
				if added {
					g.RemoveEdge(v, wp)
				}
				g.AddEdge(v, w)
			}
		}
	}
}

// Ablation: engine-backed pricing of all swaps of a vertex vs naive
// apply-BFS-revert per candidate.

func BenchmarkSwapPricingPatch(b *testing.B) {
	g := benchGraph(150, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := i % g.N()
		core.PriceSwaps(g, v, core.Sum, func(core.Move, int64) bool { return true })
	}
}

func BenchmarkSwapPricingNaive(b *testing.B) {
	g := benchGraph(150, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := i % g.N()
		for _, w := range g.Neighbors(v) {
			for wp := 0; wp < g.N(); wp++ {
				if wp == v {
					continue
				}
				core.EvaluateMove(g, core.Move{V: v, Drop: w, Add: wp}, core.Sum)
			}
		}
	}
}

// Ablation: dynamics policies on the same instance.

func benchDynamics(b *testing.B, policy dynamics.Policy) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rng := rand.New(rand.NewSource(7))
		g := treegen.RandomTree(48, rng)
		b.StartTimer()
		res, err := dynamics.Run(g, dynamics.Options{
			Objective: core.Sum, Policy: policy, Seed: 7,
		})
		if err != nil || !res.Converged {
			b.Fatal("dynamics failed")
		}
	}
}

func BenchmarkDynamicsBestResponse(b *testing.B)     { benchDynamics(b, dynamics.BestResponse) }
func BenchmarkDynamicsFirstImprovement(b *testing.B) { benchDynamics(b, dynamics.FirstImprovement) }
func BenchmarkDynamicsRandomImproving(b *testing.B)  { benchDynamics(b, dynamics.RandomImproving) }

// Tentpole ablation: the incremental pricing session held across a whole
// trajectory (dynamics.Run) vs the re-freeze-per-move oracle
// (dynamics.NaiveRun) on 128+ vertex instances; both run single-worker so
// the difference is the snapshot lifecycle, not parallelism. Trajectories
// are bit-identical (see internal/dynamics differential tests), so each
// pair does the same moves. ROADMAP.md records the measured numbers.

func benchDynamicsAblation(b *testing.B, run func(*graph.Graph, dynamics.Options) (*dynamics.Result, error),
	mk func() *graph.Graph, policy dynamics.Policy, obj core.Objective) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := mk()
		b.StartTimer()
		res, err := run(g, dynamics.Options{Objective: obj, Policy: policy, Seed: 7, Workers: 1})
		if err != nil || !res.Converged {
			b.Fatal("dynamics failed", err)
		}
	}
}

func BenchmarkDynamicsSessionBestResponsePath128(b *testing.B) {
	benchDynamicsAblation(b, dynamics.Run, func() *graph.Graph { return Path(128) },
		dynamics.BestResponse, core.Sum)
}

func BenchmarkDynamicsRefreezeBestResponsePath128(b *testing.B) {
	benchDynamicsAblation(b, dynamics.NaiveRun, func() *graph.Graph { return Path(128) },
		dynamics.BestResponse, core.Sum)
}

func BenchmarkDynamicsSessionFirstImprovementPath128(b *testing.B) {
	benchDynamicsAblation(b, dynamics.Run, func() *graph.Graph { return Path(128) },
		dynamics.FirstImprovement, core.Sum)
}

func BenchmarkDynamicsRefreezeFirstImprovementPath128(b *testing.B) {
	benchDynamicsAblation(b, dynamics.NaiveRun, func() *graph.Graph { return Path(128) },
		dynamics.FirstImprovement, core.Sum)
}

func BenchmarkDynamicsSessionRandomImprovingPath128(b *testing.B) {
	benchDynamicsAblation(b, dynamics.Run, func() *graph.Graph { return Path(128) },
		dynamics.RandomImproving, core.Sum)
}

func BenchmarkDynamicsRefreezeRandomImprovingPath128(b *testing.B) {
	benchDynamicsAblation(b, dynamics.NaiveRun, func() *graph.Graph { return Path(128) },
		dynamics.RandomImproving, core.Sum)
}

// The 256-vertex torus is already a max equilibrium, so these measure the
// pure certification sweep (one full no-move pass) with and without the
// per-vertex re-freeze.

func BenchmarkDynamicsSessionCertifyTorus256(b *testing.B) {
	benchDynamicsAblation(b, dynamics.Run, func() *graph.Graph { return NewTorus(8).Graph() },
		dynamics.BestResponse, core.Max)
}

func BenchmarkDynamicsRefreezeCertifyTorus256(b *testing.B) {
	benchDynamicsAblation(b, dynamics.NaiveRun, func() *graph.Graph { return NewTorus(8).Graph() },
		dynamics.BestResponse, core.Max)
}

// Trajectory-batched certification: the same random-improving run with
// its certification sweeps routed through the batched cross-agent pass,
// whose shared rows persist in the session's RowCache across the
// trajectory's sweeps (only rows invalidated by applied moves are
// recomputed). The trajectory is bit-identical to the unbatched run
// (internal/dynamics differential tests); the row-reuse-vs-fresh ablation
// at the sweep level lives in internal/game's CertifySweeps/SweepRows
// benchmarks. ROADMAP.md records the measured numbers.

func BenchmarkDynamicsSessionRandomImprovingBatchedPath128(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := Path(128)
		b.StartTimer()
		res, err := dynamics.Run(g, dynamics.Options{
			Objective: core.Sum, Policy: dynamics.RandomImproving,
			Seed: 7, Workers: 1, BatchedSweeps: true,
		})
		if err != nil || !res.Converged {
			b.Fatal("dynamics failed", err)
		}
	}
}

// Row-cached per-agent dynamics: the same trajectories as the Session
// ablation pair above, with BatchedSweeps routing the per-agent policy
// scans, the random policy's probes, and the certification sweeps through
// the session RowCache. With the exact remove-invalidation test and
// ApplySwap's insert-before-remove ordering, an applied move near
// equilibrium invalidates O(1) rows, so the hot loop reprices from cached
// rows instead of paying ~n BFS per scan. Trajectories are bit-identical
// to the uncached counterparts (internal/dynamics differential tests).

func benchDynamicsRowCached(b *testing.B, policy dynamics.Policy) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := Path(128)
		b.StartTimer()
		res, err := dynamics.Run(g, dynamics.Options{
			Objective: core.Sum, Policy: policy,
			Seed: 7, Workers: 1, BatchedSweeps: true,
		})
		if err != nil || !res.Converged {
			b.Fatal("dynamics failed", err)
		}
	}
}

func BenchmarkDynamicsSessionBestResponseRowCachedPath128(b *testing.B) {
	benchDynamicsRowCached(b, dynamics.BestResponse)
}

func BenchmarkDynamicsSessionFirstImprovementRowCachedPath128(b *testing.B) {
	benchDynamicsRowCached(b, dynamics.FirstImprovement)
}

func BenchmarkDynamicsSessionRandomImprovingRowCachedPath128(b *testing.B) {
	benchDynamicsRowCached(b, dynamics.RandomImproving)
}

// Invalidation rate at the cache level: a warm 128-vertex cache under an
// equidistant re-point apply/undo cycle — the near-equilibrium move shape.
// The exact remove test keeps all but 3 rows per direction (the old
// conservative rule flagged all n), so rows-recomputed/op stays constant
// in n; the metric makes the drop visible in BENCH artifacts.

func BenchmarkRowCacheSwapInvalidation(b *testing.B) {
	const n = 128
	g := graph.New(n)
	g.AddEdge(0, 1)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	for v := 4; v < n; v++ {
		g.AddEdge(v-1, v)
	}
	s := pricing.Shared(1).NewSession(g)
	cache := s.RowCache()
	cache.Sync(1, nil)
	start := cache.Recomputed()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ApplySwap(0, 1, 2)
		cache.Sync(1, nil)
		s.Undo()
		cache.Sync(1, nil)
	}
	b.StopTimer()
	b.ReportMetric(float64(cache.Recomputed()-start)/float64(b.N), "rows/op")
}

// Multicore sweep targets (make benchmulti): every worker count here
// resolves from GOMAXPROCS, so `go test -cpu=1,2,4,8 -bench=^BenchmarkMulti`
// produces the scaling datapoints for the three parallel datapaths — the
// sharded scan engine, the batched cross-agent sweep, and the row cache's
// sharded Sync. Verdicts and rows are worker-count invariant (pinned by
// TestModelsScanWorkerInvariant and the row-cache differentials), so the
// sweep measures scheduling only.

func BenchmarkMultiScanEngineTorus256(b *testing.B) {
	g := NewTorus(8).Graph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _, err := core.CheckMax(g, 0); !ok || err != nil {
			b.Fatal("torus rejected")
		}
	}
}

func BenchmarkMultiBatchedSweepTorus256(b *testing.B) {
	inst := game.Swap{}.New(NewTorus(8).Graph(), 0)
	defer game.CloseInstance(inst)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, ok := game.FindImprovementBatched(inst, core.Max); ok {
			b.Fatal("torus equilibrium regressed")
		}
	}
}

func BenchmarkMultiRowCacheSyncPath256(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	s := pricing.Shared(workers).NewSession(Path(256))
	defer s.Close()
	cache := s.RowCache()
	cache.Sync(workers, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A mid-path cut and its undo invalidate every row (both genuinely
		// change all distances), so each Sync rebuilds all n rows sharded
		// across the workers.
		s.ApplyRemove(127, 128)
		s.ApplyAdd(127, 128)
		cache.Sync(workers, nil)
	}
}

// Greedy certification, per-agent vs batched: the greedy model is the
// batched pass's best case — its add stage prices every candidate exactly
// from the shared full-graph rows (adding an edge excludes no vertex), so
// a full stable pass pays n row BFS instead of n² add-stage BFS, with no
// verification pass at all. Star(128) at edge cost 2 is greedy-stable
// under sum, so both sides measure the full no-move sweep.

func benchGreedyCertifyStar128(b *testing.B, batched bool) {
	inst := game.Greedy{EdgeCost: 2}.New(Star(128), 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var ok bool
		if batched {
			_, _, _, ok = game.FindImprovementBatched(inst, core.Sum)
		} else {
			_, _, _, ok = inst.FindImprovement(core.Sum)
		}
		if ok {
			b.Fatal("star must be greedy-stable at edge cost 2")
		}
	}
}

func BenchmarkGreedyCertifyStar128PerAgent(b *testing.B) { benchGreedyCertifyStar128(b, false) }
func BenchmarkGreedyCertifyStar128Batched(b *testing.B)  { benchGreedyCertifyStar128(b, true) }

// Deviation-model benchmarks: the Greedy and Interests models end-to-end
// through the model-generic dynamics driver, and the probe-row cache
// behind SwapSession.PriceMove (the random-improving ablation above
// measures its trajectory-level effect; this isolates the warm-cache probe
// path). ROADMAP.md records the measured numbers.

func benchModelDynamics(b *testing.B, model game.Model, policy dynamics.Policy) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rng := rand.New(rand.NewSource(7))
		g := treegen.RandomTree(64, rng)
		b.StartTimer()
		// Interests dynamics may legally cycle; the cap makes the work
		// deterministic either way.
		if _, err := dynamics.Run(g, dynamics.Options{
			Objective: core.Sum, Policy: policy, Model: model,
			Workers: 1, Seed: 7, MaxMoves: 500,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDynamicsGreedyBestResponse64(b *testing.B) {
	benchModelDynamics(b, game.Greedy{EdgeCost: 2}, dynamics.BestResponse)
}

func BenchmarkDynamicsInterestsFirstImprovement64(b *testing.B) {
	irng := rand.New(rand.NewSource(3))
	benchModelDynamics(b, game.RandomInterests(64, 0.3, irng), dynamics.FirstImprovement)
}

func BenchmarkDynamicsBudgetBestResponse64(b *testing.B) {
	benchModelDynamics(b, game.Budget{K: 3}, dynamics.BestResponse)
}

func BenchmarkDynamicsTwoNeighborhood64(b *testing.B) {
	benchModelDynamics(b, game.TwoNeighborhood{}, dynamics.BestResponse)
}

// Sharded Interests scan ablation: the interest-aware certification sweep
// on a 256-vertex star (a stable position, so the sweep is a full
// no-violation pass over every agent) with dense and sparse interest sets,
// sequential vs all-core sharding. The dense case is the lever's target —
// the Θ(|I(v)|) per-candidate reduction rides on every per-endpoint BFS —
// and the sparse case pins the no-regression bar. ROADMAP.md records the
// measured numbers.

func benchInterestsCheck(b *testing.B, p float64, workers int) {
	n := 256
	irng := rand.New(rand.NewSource(11))
	model := game.RandomInterests(n, p, irng)
	inst := model.New(Star(n), workers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stable, viol, err := inst.CheckStable(core.Sum)
		if err != nil || !stable {
			b.Fatal("star rejected:", viol, err)
		}
	}
}

func BenchmarkCheckInterestsDense256(b *testing.B)  { benchInterestsCheck(b, 0.9, 0) }
func BenchmarkCheckInterestsSparse256(b *testing.B) { benchInterestsCheck(b, 0.05, 0) }

// benchInterestsCheckBatched runs the same full stable-position sweep
// through the batched cross-agent pass: endpoint rows are computed once
// and every per-leaf candidate scan reduces against them first, paying an
// exact deviator-excluded BFS only for flagged candidates.
func benchInterestsCheckBatched(b *testing.B, p float64, workers int) {
	n := 256
	irng := rand.New(rand.NewSource(11))
	model := game.RandomInterests(n, p, irng)
	inst := model.New(Star(n), workers).(game.BatchedSweeper)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, ok := inst.FindImprovementBatched(core.Sum); ok {
			b.Fatal("star rejected")
		}
	}
}

func BenchmarkCheckInterestsDense256Batched(b *testing.B) {
	benchInterestsCheckBatched(b, 0.9, 0)
}

func BenchmarkCheckInterestsSparse256Batched(b *testing.B) {
	benchInterestsCheckBatched(b, 0.05, 0)
}

func BenchmarkCheckInterestsDense256Sequential(b *testing.B) {
	benchInterestsCheck(b, 0.9, 1)
}

func BenchmarkCheckInterestsSparse256Sequential(b *testing.B) {
	benchInterestsCheck(b, 0.05, 1)
}

func BenchmarkSwapPriceMoveWarmCache(b *testing.B) {
	// Repeated probes of an unchanged position: after the first pass every
	// PriceMove is two cache hits instead of two BFS passes.
	g := Path(128)
	sess := core.NewSession(g, 1)
	rng := rand.New(rand.NewSource(9))
	moves := make([]core.Move, 0, 64)
	for len(moves) < 64 {
		if m, ok := sess.Instance().Sample(rng); ok {
			moves = append(moves, m)
		}
	}
	for _, m := range moves { // prime the cache
		sess.PriceMove(m, core.Sum)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.PriceMove(moves[i%len(moves)], core.Sum)
	}
}

func BenchmarkSwapPriceMoveNoCache(b *testing.B) {
	// The same probes priced from two fresh BFS rows over the live view —
	// the pre-cache probe path.
	g := Path(128)
	sess := core.NewSession(g, 1)
	rng := rand.New(rand.NewSource(9))
	moves := make([]core.Move, 0, 64)
	for len(moves) < 64 {
		if m, ok := sess.Instance().Sample(rng); ok {
			moves = append(moves, m)
		}
	}
	view := sess.View()
	n := view.N()
	dv := make([]int32, n)
	dw := make([]int32, n)
	queue := make([]int32, 0, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := moves[i%len(moves)]
		view.BFSSkipEdge(m.V, m.V, m.Drop, dv, queue)
		view.BFSSkipVertex(m.Add, m.V, dw, queue)
		pricing.Patched(dv, dw, pricing.Sum)
	}
}

func BenchmarkGraph6RoundTrip(b *testing.B) {
	g := benchGraph(200, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := ToGraph6(g)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := FromGraph6(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIsoCertificateExact(b *testing.B) {
	g := Star(8) // n=8: full permutation canonicalization
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iso.Certificate(g)
	}
}

func BenchmarkIsoCertificateRefine(b *testing.B) {
	g := NewTorus(6).Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iso.Certificate(g)
	}
}

func BenchmarkNashBestResponse(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	g := treegen.RandomTree(40, rng)
	st, err := nash.NewState(g, games.MinOwnership(g), 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.BestResponse(i % g.N())
	}
}

func BenchmarkPruferDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n := 512
	seq := make([]int, n-2)
	for i := range seq {
		seq[i] = rng.Intn(n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := treegen.PruferDecode(seq); err != nil {
			b.Fatal(err)
		}
	}
}
