// Fig3 walks through this reproduction's headline finding about Theorem 5:
// the paper's explicit Figure 3 graph satisfies every stated structural
// invariant yet admits an improving swap, while the generalized
// construction with four branches is a verified diameter-3 sum equilibrium.
//
//	go run ./examples/fig3
package main

import (
	"fmt"
	"log"

	bncg "repro"
	"repro/internal/core"
)

func main() {
	g := bncg.Fig3()
	labels := bncg.Fig3Labels()

	fmt.Println("The literal Figure 3 graph (Theorem 5, SPAA 2010):")
	diam, _ := g.Diameter()
	girth, _ := g.Girth()
	fmt.Printf("  n=%d m=%d diameter=%d girth=%d\n", g.N(), g.M(), diam, girth)
	fmt.Println("  local diameters (paper: a,b,d → 3; c → 2):")
	for v := 0; v < g.N(); v++ {
		ecc, _ := g.Eccentricity(v)
		fmt.Printf("    %-5s %d\n", labels[v], ecc)
	}

	ok, viol, err := bncg.CheckSum(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n  sum equilibrium? %v\n", ok)
	if !ok {
		fmt.Printf("  improving swap found: %s drops its edge to %s and connects to %s\n",
			labels[viol.Move.V], labels[viol.Move.Drop], labels[viol.Move.Add])
		fmt.Printf("  %s's distance sum: %d → %d\n",
			labels[viol.Move.V], viol.OldCost, viol.NewCost)
		fmt.Println("\n  Why the proof misses it: the new endpoint is a matching")
		fmt.Println("  partner of the dropped one, so Lemma 8's 'loses at least 2'")
		fmt.Println("  weakens to 'at least 1' — gain 3 beats loss 2.")

		// Show the exact accounting.
		before := g.BFS(viol.Move.V)
		undo := core.ApplyMove(g, viol.Move)
		after := g.BFS(viol.Move.V)
		fmt.Println("\n  per-vertex distance changes for the mover:")
		for x := 0; x < g.N(); x++ {
			if before[x] != after[x] {
				fmt.Printf("    d(%s,%s): %d → %d\n",
					labels[viol.Move.V], labels[x], before[x], after[x])
			}
		}
		undo()
	}

	fmt.Println("\nThe repaired witness (four branches, all-crossed matchings):")
	r := bncg.DiameterThreeSumEquilibrium(4)
	diam, _ = r.Diameter()
	girth, _ = r.Girth()
	ok, _, err = bncg.CheckSum(r, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  n=%d m=%d diameter=%d girth=%d sum equilibrium=%v\n",
		r.N(), r.M(), diam, girth, ok)
	fmt.Println("  → Theorem 5's statement stands: diameter-3 sum equilibria exist.")
}
