// Dynamics traces swap dynamics move by move: starting from a long path
// (the worst tree), agents swap edges until the graph collapses into the
// star — the only sum-equilibrium tree (Theorem 1). It then contrasts the
// three scheduling policies on the same random instance.
//
//	go run ./examples/dynamics [-n 12]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	bncg "repro"
	"repro/internal/dynamics"
)

func main() {
	n := flag.Int("n", 12, "path length")
	flag.Parse()

	g := bncg.Path(*n)
	fmt.Printf("start: path on %d vertices, diameter %d\n\n", *n, *n-1)
	res, err := bncg.RunDynamics(g, bncg.DynamicsOptions{
		Objective: bncg.Sum, Policy: bncg.BestResponse, Trace: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range res.Trace {
		fmt.Printf("  move %2d: agent %d rewires %d→%d (cost %d→%d)\n",
			e.MoveRank, e.Move.V, e.Move.Drop, e.Move.Add, e.OldCost, e.NewCost)
	}
	diam, _ := g.Diameter()
	fmt.Printf("\nconverged in %d moves; final diameter %d (star: max degree %d)\n\n",
		res.Moves, diam, g.MaxDegree())

	// Policy comparison on one seeded random instance.
	fmt.Println("policy comparison (random tree + chords, n=40, seed 11):")
	policies := []dynamics.Policy{
		bncg.BestResponse, bncg.FirstImprovement, bncg.RandomImproving,
	}
	for _, pol := range policies {
		rng := rand.New(rand.NewSource(11))
		h := bncg.RandomTree(40, rng)
		for i := 0; i < 10; i++ {
			u, v := rng.Intn(40), rng.Intn(40)
			if u != v {
				h.AddEdge(u, v)
			}
		}
		before, _ := h.Diameter()
		r, err := bncg.RunDynamics(h, bncg.DynamicsOptions{
			Objective: bncg.Sum, Policy: pol, Seed: 11,
		})
		if err != nil {
			log.Fatal(err)
		}
		after, _ := h.Diameter()
		fmt.Printf("  %-18v moves=%-4d sweeps=%-3d diameter %d→%d converged=%v\n",
			pol, r.Moves, r.Sweeps, before, after, r.Converged)
	}
}
