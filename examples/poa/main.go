// Poa demonstrates the paper's transfer principle and the price of anarchy
// across the α spectrum of the classic network creation game: swap moves
// price identically for every α, so swap equilibria of the basic game are
// "equilibrium skeletons" for all α at once; buying and deleting edges
// merely clip an α-interval.
//
//	go run ./examples/poa
package main

import (
	"fmt"
	"log"
	"math/rand"

	bncg "repro"
	"repro/internal/core"
	"repro/internal/games"
)

func main() {
	instances := []struct {
		name string
		g    *bncg.Graph
	}{
		{"star(16)", bncg.Star(16)},
		{"repaired diam-3 equilibrium", bncg.DiameterThreeSumEquilibrium(4)},
		{"torus k=3", bncg.NewTorus(3).Graph()},
		{"C5", bncg.Cycle(5)},
	}

	fmt.Println("transfer principle: swap deltas at α=0.01 vs α=10000 (must match):")
	rng := rand.New(rand.NewSource(5))
	for _, inst := range instances {
		o := games.MinOwnership(inst.g)
		maxDiff := 0.0
		for t := 0; t < 100; t++ {
			v := rng.Intn(inst.g.N())
			nbs := inst.g.Neighbors(v)
			if len(nbs) == 0 {
				continue
			}
			w := nbs[rng.Intn(len(nbs))]
			wp := rng.Intn(inst.g.N())
			if wp == v || inst.g.HasEdge(v, wp) {
				continue
			}
			a, b := games.SwapDelta(inst.g, o, core.Move{V: v, Drop: w, Add: wp}, 0.01, 10000)
			if d := a - b; d > maxDiff || -d > maxDiff {
				if d < 0 {
					d = -d
				}
				maxDiff = d
			}
		}
		fmt.Printf("  %-28s max |Δ(α₁)−Δ(α₂)| = %g\n", inst.name, maxDiff)
	}

	fmt.Println("\nα-interval on which each swap equilibrium is a greedy α-equilibrium:")
	for _, inst := range instances {
		lo, hi, ok, err := games.StableAlphaInterval(inst.g, games.MinOwnership(inst.g), core.Sum, 0)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case !ok && lo == 0 && hi == 0:
			fmt.Printf("  %-28s not swap-stable: no α works\n", inst.name)
		case hi >= core.InfCost:
			fmt.Printf("  %-28s stable for all α ≥ %d\n", inst.name, lo)
		default:
			fmt.Printf("  %-28s stable for α ∈ [%d, %d]\n", inst.name, lo, hi)
		}
	}

	fmt.Println("\nprice of anarchy proxy C(G,α)/min(star,clique) across α:")
	fmt.Printf("  %-28s %8s %8s %8s %8s  (diameter)\n", "graph", "α=0.5", "α=2", "α=n", "α=n²")
	for _, inst := range instances {
		n := float64(inst.g.N())
		diam, _ := inst.g.Diameter()
		fmt.Printf("  %-28s %8.3f %8.3f %8.3f %8.3f  (%d)\n", inst.name,
			games.PriceOfAnarchyProxy(inst.g, 0.5),
			games.PriceOfAnarchyProxy(inst.g, 2),
			games.PriceOfAnarchyProxy(inst.g, n),
			games.PriceOfAnarchyProxy(inst.g, n*n), diam)
	}
}
