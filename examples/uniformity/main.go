// Uniformity demonstrates the Section 5 machinery: distance-uniformity
// profiles, the Theorem 13 power-graph reduction, and the Theorem 15
// diameter bound for Abelian Cayley graphs.
//
//	go run ./examples/uniformity
package main

import (
	"fmt"
	"log"

	bncg "repro"
	"repro/internal/cayley"
	"repro/internal/uniformity"
)

func main() {
	// Distance-uniformity profiles of contrasting families.
	fmt.Println("ε-distance-uniformity profiles (smaller ε = more uniform):")
	cases := []struct {
		name string
		g    interface {
			AllPairsParallel(int) *bncg.Matrix
			N() int
		}
	}{
		{"complete K32", bncg.Complete(32)},
		{"hypercube Q8", bncg.Hypercube(8)},
		{"torus k=8", bncg.NewTorus(8).Graph()},
		{"cycle C64", bncg.Cycle(64)},
	}
	for _, c := range cases {
		prof, err := uniformity.Analyze(c.g.AllPairsParallel(0))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s n=%-4d diam=%-3d best r=%-2d ε=%.3f  (almost: r=%d ε=%.3f)\n",
			c.name, prof.N, prof.Diameter, prof.R, prof.Epsilon,
			prof.AlmostR, prof.AlmostEpsilon)
	}

	// Theorem 13: reduce a high-diameter graph to an almost-uniform one.
	fmt.Println("\nTheorem 13 power-graph reduction (β = 0.15):")
	for _, name := range []string{"cycle C64", "torus k=8"} {
		var g *bncg.Graph
		if name == "cycle C64" {
			g = bncg.Cycle(64)
		} else {
			g = bncg.NewTorus(8).Graph()
		}
		red, err := uniformity.Reduce(g, 0.15, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s diam %d → %d via G^%d; middle interval [%d,%d]; almost-ε=%.3f uniform-mode=%v\n",
			name, red.InputDiam, red.PowerDiam, red.X, red.Lo, red.Hi,
			red.Profile.AlmostEpsilon, red.Uniform)
	}

	// Theorem 15: Cayley graph of an Abelian group with small ε has
	// logarithmically small diameter.
	fmt.Println("\nTheorem 15 bound on Abelian Cayley graphs:")
	n := 64
	grp, err := cayley.NewGroup(n)
	if err != nil {
		log.Fatal(err)
	}
	var gens [][]int
	for s := 1; s < n; s++ {
		if s%2 == 1 { // dense symmetric set: all odd residues (s and n-s)
			gens = append(gens, []int{s})
		}
	}
	cg, err := grp.CayleyGraph(gens)
	if err != nil {
		log.Fatal(err)
	}
	prof, err := uniformity.Analyze(cg.AllPairsParallel(0))
	if err != nil {
		log.Fatal(err)
	}
	diam, _ := cg.Diameter()
	bound := cayley.Theorem15Bound(cg.N(), prof.Epsilon)
	fmt.Printf("  Cay(Z_%d, odd residues): ε=%.3f diameter=%d Theorem-15 bound=%.1f holds=%v\n",
		n, prof.Epsilon, diam, bound, float64(diam) <= bound)

	// Sumset growth backs the proof: |qS| ≤ |pS|^{q/p}.
	sizes, err := grp.SumsetSizes(gens, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  sumset growth |iS|: %v — Plünnecke violations: %d\n",
		sizes[1:], len(cayley.PlunneckeViolations(sizes)))
}
