// Torus renders Figure 4 of the paper: the diagonal torus with distance
// contours from the central vertex (k,k), and verifies the Theorem 12
// predicates at several sizes — exhaustively where feasible, by sampling
// with the closed-form distance oracle beyond that.
//
//	go run ./examples/torus [-k 6]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	bncg "repro"
	"repro/internal/core"
)

func main() {
	k := flag.Int("k", 6, "torus half-period (n = 2k²)")
	flag.Parse()

	tor := bncg.NewTorus(*k)
	fmt.Printf("diagonal torus: k=%d, n=%d, diameter=%d (= k = √(n/2))\n\n",
		*k, tor.N(), tor.LocalDiameter())

	// ASCII contour plot à la Figure 4: cell (i,j) shows d((k,k),(i,j)).
	center := tor.Index(*k, *k)
	m := 2 * *k
	fmt.Println("distance contours from the center (k,k) — '.' marks odd-parity holes:")
	for j := m - 1; j >= 0; j-- {
		for i := 0; i < m; i++ {
			if (i+j)%2 != 0 {
				fmt.Print("  .")
				continue
			}
			fmt.Printf(" %2d", tor.Dist(center, tor.Index(i, j)))
		}
		fmt.Println()
	}
	fmt.Println()

	// Verify the Theorem 12 predicates.
	g := tor.Graph()
	if *k <= 5 {
		ins, _, err := core.IsInsertionStable(g, 0)
		if err != nil {
			log.Fatal(err)
		}
		del, _, err := core.IsDeletionCritical(g, 0)
		if err != nil {
			log.Fatal(err)
		}
		eq, _, err := core.CheckMax(g, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("exhaustive: insertion-stable=%v deletion-critical=%v max-equilibrium=%v\n",
			ins, del, eq)
	} else {
		rng := rand.New(rand.NewSource(1))
		ins, _ := core.SampleInsertionStable(tor, 300, rng)
		del, _ := core.SampleDeletionCritical(g, 150, rng)
		fmt.Printf("sampled (n=%d): insertion-stable=%v deletion-critical=%v\n",
			tor.N(), ins, del)
	}

	// Local diameters are perfectly balanced (Lemma 2: spread ≤ 1).
	spread, err := core.LocalDiameterSpread(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local diameter spread: %d (Lemma 2 bound: 1)\n", spread)
}
