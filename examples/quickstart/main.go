// Quickstart: build graphs, check equilibria, run swap dynamics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	bncg "repro"
)

func main() {
	// 1. The star is the unique sum-equilibrium tree (Theorem 1).
	star := bncg.Star(10)
	ok, _, err := bncg.CheckSum(star, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("star(10) is a sum equilibrium: %v\n", ok)

	// 2. A long cycle is not: some agent has an improving swap.
	c12 := bncg.Cycle(12)
	ok, viol, err := bncg.CheckSum(c12, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cycle(12) is a sum equilibrium: %v (witness: %v)\n", ok, viol)

	// 3. Swap dynamics repair it: run best-response until equilibrium.
	res, err := bncg.RunDynamics(c12, bncg.DynamicsOptions{
		Objective: bncg.Sum, Policy: bncg.BestResponse,
	})
	if err != nil {
		log.Fatal(err)
	}
	diam, _ := c12.Diameter()
	fmt.Printf("dynamics: converged=%v after %d moves; final diameter %d\n",
		res.Converged, res.Moves, diam)

	// 4. Random trees always collapse to a star under sum dynamics.
	rng := rand.New(rand.NewSource(7))
	tree := bncg.RandomTree(30, rng)
	before, _ := tree.Diameter()
	if _, err := bncg.RunDynamics(tree, bncg.DynamicsOptions{
		Objective: bncg.Sum, Policy: bncg.BestResponse,
	}); err != nil {
		log.Fatal(err)
	}
	after, _ := tree.Diameter()
	fmt.Printf("random tree: diameter %d → %d (a star)\n", before, after)

	// 5. The Theorem 12 torus: a max equilibrium of diameter Θ(√n).
	torus := bncg.NewTorus(4).Graph()
	ok, _, err = bncg.CheckMax(torus, 0)
	if err != nil {
		log.Fatal(err)
	}
	diam, _ = torus.Diameter()
	fmt.Printf("torus(k=4): n=%d, diameter=%d, max equilibrium: %v\n",
		torus.N(), diam, ok)
}
